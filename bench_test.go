package specslice_test

// One benchmark per table/figure of the paper's evaluation. Run:
//
//	go test -bench=. -benchmem
//
// The full tables (with the paper-vs-measured comparison) are produced by
// cmd/experiments; these benches time the kernels each table depends on and
// report the headline metric of the corresponding figure via ReportMetric.

import (
	"strings"
	"testing"

	"specslice"
	"specslice/internal/core"
	"specslice/internal/emit"
	"specslice/internal/engine"
	"specslice/internal/fsa"
	"specslice/internal/interp"
	"specslice/internal/lang"
	"specslice/internal/mono"
	"specslice/internal/sdg"
	"specslice/internal/slice"
	"specslice/internal/workload"
)

func configsFor(vs []sdg.VertexID) core.Configs {
	var out core.Configs
	for _, v := range vs {
		out = append(out, core.Config{Vertex: v})
	}
	return out
}

func benchConfig(name string) workload.BenchConfig {
	for _, c := range workload.Benchmarks() {
		if c.Name == name {
			return c
		}
	}
	panic("unknown benchmark " + name)
}

// BenchmarkFig14Slices times the paper's running example end to end:
// polyvariant slice of Fig. 1 including program emission.
func BenchmarkFig14Slices(b *testing.B) {
	prog := workload.Fig1Program()
	g := sdg.MustBuild(prog)
	crit := core.PrintfCriterion(g, "main")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Specialize(g, configsFor(crit))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := emit.Program(g, res.Variants()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineReuse compares the cold one-shot path (parse + SDG build
// + encode + slice per request, the public API's cold start) against warm
// slices served from one reused engine on the Fig. 14 workload. The warm
// path amortizes the SDG, the PDS encoding, and the Prestar rule indexes.
func BenchmarkEngineReuse(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := specslice.MustParse(workload.Fig1Source).SDG()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.SpecializationSlice(g.PrintfCriterion("main")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng, err := specslice.MustParse(workload.Fig1Source).Engine()
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Warm(); err != nil {
			b.Fatal(err)
		}
		crit := eng.SDG().PrintfCriterion("main")
		if _, err := eng.SpecializationSlice(crit); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.SpecializationSlice(crit); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAutomatonPipeline isolates the Alg.-1 automaton half (lines 4–8)
// on a replace-suite slice automaton: the fused MRD chain (reversal folded
// into the subset construction, shared scratch arena, no epsilon-removal
// pass) against the composed per-operation chain it replaced.
func BenchmarkAutomatonPipeline(b *testing.B) {
	cfg := benchConfig("replace")
	g := sdg.MustBuild(workload.Generate(cfg))
	crit := printfSites(g)[0]
	res, err := core.Specialize(g, configsFor(crit))
	if err != nil {
		b.Fatal(err)
	}
	a1 := res.A1
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if a6, _ := fsa.MRD(a1); a6.NumStates() == 0 {
				b.Fatal("empty MRD result")
			}
		}
	})
	b.Run("composed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a6 := a1.Reverse().Determinize().Minimize().Reverse().RemoveEpsilon()
			if a6.NumStates() == 0 {
				b.Fatal("empty composed result")
			}
		}
	})
}

// BenchmarkBatchSlices fans 16 criteria over the tcas suite: sequential
// one-shot slicing (rebuild everything per criterion) vs. the engine's
// SliceAll with a GOMAXPROCS worker pool sharing one analysis state.
func BenchmarkBatchSlices(b *testing.B) {
	cfg := benchConfig("tcas")
	prog := workload.Generate(cfg)
	g := sdg.MustBuild(prog)
	sites := printfSites(g)
	const batchSize = 16
	var crits [][]sdg.VertexID
	for i := 0; len(crits) < batchSize; i++ {
		crits = append(crits, sites[i%len(sites)])
	}
	b.Run("sequential-oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, c := range crits {
				gg := sdg.MustBuild(prog)
				if _, err := core.Specialize(gg, configsFor(c)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("engine-batch", func(b *testing.B) {
		eng := engine.New(g)
		reqs := make([]engine.Request, len(crits))
		for i, c := range crits {
			reqs[i] = engine.Request{Mode: engine.ModePoly, Spec: configsFor(c)}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resps, _ := eng.SliceAll(reqs, engine.BatchOptions{})
			for _, r := range resps {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
}

// BenchmarkFig13Exponential sweeps the §4.3 family; the variant count
// (2^k − 1) is the figure's y-axis.
func BenchmarkFig13Exponential(b *testing.B) {
	for _, k := range []int{2, 4, 6} {
		b.Run(map[int]string{2: "k=2", 4: "k=4", 6: "k=6"}[k], func(b *testing.B) {
			g := sdg.MustBuild(workload.PkProgram(k))
			crit := core.PrintfCriterion(g, "main")
			var variants int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Specialize(g, configsFor(crit))
				if err != nil {
					b.Fatal(err)
				}
				variants = len(res.VariantsOf["Pk"])
			}
			b.ReportMetric(float64(variants), "variants")
		})
	}
}

// BenchmarkFig17BuildSDG times front-end + SDG construction per suite.
func BenchmarkFig17BuildSDG(b *testing.B) {
	for _, cfg := range []workload.BenchConfig{benchConfig("tcas"), benchConfig("replace"), benchConfig("gzip")} {
		cfg := cfg
		src := workload.GenerateSource(cfg)
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := lang.Parse(src)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sdg.Build(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig18Distribution times the per-suite specialization sweep whose
// variant histogram is Fig. 18, reporting the multi-version share.
func BenchmarkFig18Distribution(b *testing.B) {
	cfg := benchConfig("schedule2")
	g := sdg.MustBuild(workload.Generate(cfg))
	crits := printfSites(g)
	var multi, total int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multi, total = 0, 0
		for _, crit := range crits {
			res, err := core.Specialize(g, configsFor(crit))
			if err != nil {
				b.Fatal(err)
			}
			for _, n := range res.VariantCounts() {
				total++
				if n > 1 {
					multi++
				}
			}
		}
	}
	if total > 0 {
		b.ReportMetric(100*float64(multi)/float64(total), "multi-version-%")
	}
}

// BenchmarkFig19SliceGrowth measures poly slice size relative to the
// closure slice (the table's column), timing the polyvariant slicer.
func BenchmarkFig19SliceGrowth(b *testing.B) {
	for _, name := range []string{"tcas", "print_tokens", "space"} {
		cfg := benchConfig(name)
		b.Run(name, func(b *testing.B) {
			prog := workload.Generate(cfg)
			g := sdg.MustBuild(prog)
			crit := narrowCriterion(g)
			gm := sdg.MustBuild(prog)
			closure := len(mono.Binkley(gm, crit).Closure)
			var growth float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Specialize(g, configsFor(crit))
				if err != nil {
					b.Fatal(err)
				}
				growth = 100 * float64(len(res.R.Vertices)-closure) / float64(closure)
			}
			b.ReportMetric(growth, "%extra")
		})
	}
}

// BenchmarkFig20Scatter times the per-procedure size computation for the
// scatter plot (dominated by the two slicers).
func BenchmarkFig20Scatter(b *testing.B) {
	cfg := benchConfig("schedule")
	prog := workload.Generate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := sdg.MustBuild(prog)
		crit := printfSites(g)[0]
		mres := mono.Binkley(g, crit)
		_ = mres.PerProcSizes()
		g2 := sdg.MustBuild(prog)
		if _, err := core.Specialize(g2, configsFor(crit)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig21Times compares the two slicers' end-to-end times.
func BenchmarkFig21Times(b *testing.B) {
	cfg := benchConfig("print_tokens2")
	prog := workload.Generate(cfg)
	b.Run("mono", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := sdg.MustBuild(prog)
			crit := printfSites(g)[0]
			res := mono.Binkley(g, crit)
			if _, err := emit.Program(g, res.Variants()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("poly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := sdg.MustBuild(prog)
			crit := printfSites(g)[0]
			res, err := core.Specialize(g, configsFor(crit))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := emit.Program(g, res.Variants()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig22Memory: run with -benchmem; allocated bytes/op is the
// memory metric the table reports.
func BenchmarkFig22Memory(b *testing.B) {
	cfg := benchConfig("schedule2")
	prog := workload.Generate(cfg)
	g := sdg.MustBuild(prog)
	crit := printfSites(g)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Specialize(g, configsFor(crit)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeterminizeShrink times the automaton pipeline step the §4.2
// note is about and reports the shrink percentage.
func BenchmarkDeterminizeShrink(b *testing.B) {
	cfg := benchConfig("replace")
	g := sdg.MustBuild(workload.Generate(cfg))
	crit := printfSites(g)[0]
	res, err := core.Specialize(g, configsFor(crit))
	if err != nil {
		b.Fatal(err)
	}
	a1 := res.A1
	var after int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		after = a1.Reverse().Determinize().NumStates()
	}
	shrink := 100 * float64(a1.NumStates()-after) / float64(a1.NumStates())
	b.ReportMetric(shrink, "shrink%")
}

// BenchmarkWcSpeedup emits the wc slice and measures interpreter steps,
// reporting the slice's share of the original's work (§5: paper 32.5%).
func BenchmarkWcSpeedup(b *testing.B) {
	prog := workload.WcProgram()
	input := workload.WcInput(strings.Repeat("a few words here\n", 50))
	orig, err := interp.Run(prog, interp.Options{Input: input})
	if err != nil {
		b.Fatal(err)
	}
	g := sdg.MustBuild(prog)
	crit := configsFor(printfSites(g)[0])
	var pct float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Specialize(g, crit)
		if err != nil {
			b.Fatal(err)
		}
		out, err := emit.Program(g, res.Variants())
		if err != nil {
			b.Fatal(err)
		}
		run, err := interp.Run(out, interp.Options{Input: input})
		if err != nil {
			b.Fatal(err)
		}
		pct = 100 * float64(run.Steps) / float64(orig.Steps)
	}
	b.ReportMetric(pct, "%steps")
}

// BenchmarkPrestar isolates the stack-configuration-slicing kernel.
func BenchmarkPrestar(b *testing.B) {
	cfg := benchConfig("gzip")
	g := sdg.MustBuild(workload.Generate(cfg))
	crit := printfSites(g)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ClosureSlice(g, core.SDGVertices(crit)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummaryEdges isolates the HRB summary-edge computation the
// monovariant baseline depends on. Graph rebuild time is excluded — each
// iteration needs a fresh graph only because the computation is a one-time
// fixpoint per graph.
func BenchmarkSummaryEdges(b *testing.B) {
	cfg := benchConfig("space")
	prog := workload.Generate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := sdg.MustBuild(prog)
		b.StartTimer()
		slice.ComputeSummaryEdges(g)
	}
}

// BenchmarkAblationMinimize quantifies the design choice DESIGN.md calls
// out: running the pipeline without minimization still yields a correct
// partition refinement, but a non-minimal one — the metric reports how many
// extra PDG states (specialized procedures) skipping minimize would cost.
func BenchmarkAblationMinimize(b *testing.B) {
	// The metric is usually 0: in practice reverse-determinization alone
	// already yields the minimal partition — the same phenomenon as the
	// paper's §4.2 observation that determinize does not blow up. The
	// bench quantifies the cost of the extra minimize pass against the
	// states it saves.
	cfg := benchConfig("space")
	g := sdg.MustBuild(workload.Generate(cfg))
	crit := narrowCriterion(g)
	res, err := core.Specialize(g, configsFor(crit))
	if err != nil {
		b.Fatal(err)
	}
	a1 := res.A1
	var withoutMin, withMin int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withoutMin = a1.Reverse().Determinize().Reverse().Trim().NumStates()
		withMin = a1.Reverse().Determinize().Minimize().Reverse().Trim().NumStates()
	}
	b.ReportMetric(float64(withoutMin-withMin), "extra-states-without-minimize")
}

// BenchmarkAblationHopcroftVsMoore compares the two minimization
// implementations on slice automata.
func BenchmarkAblationHopcroftVsMoore(b *testing.B) {
	cfg := benchConfig("space")
	g := sdg.MustBuild(workload.Generate(cfg))
	crit := printfSites(g)[0]
	res, err := core.Specialize(g, configsFor(crit))
	if err != nil {
		b.Fatal(err)
	}
	rev := res.A1.Reverse().Determinize()
	b.Run("hopcroft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rev.Minimize()
		}
	})
	b.Run("moore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rev.MinimizeMoore()
		}
	})
}

// BenchmarkAblationSummaryVsPDSClosure compares the two independent
// closure-slice implementations (HRB summary-edge two-phase vs PDS pre*).
func BenchmarkAblationSummaryVsPDSClosure(b *testing.B) {
	cfg := benchConfig("print_tokens")
	prog := workload.Generate(cfg)
	b.Run("hrb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := sdg.MustBuild(prog)
			crit := printfSites(g)[0]
			slice.ComputeSummaryEdges(g)
			slice.Backward(g, crit)
		}
	})
	b.Run("pds", func(b *testing.B) {
		g := sdg.MustBuild(prog)
		crit := printfSites(g)[0]
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ClosureSlice(g, core.SDGVertices(crit)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// printfSites returns one criterion (its actual-ins) per printf in main.
func printfSites(g *sdg.Graph) [][]sdg.VertexID {
	var out [][]sdg.VertexID
	for _, s := range g.Sites {
		if s.Lib && s.Callee == "printf" && g.Procs[s.CallerProc].Name == "main" {
			out = append(out, append([]sdg.VertexID(nil), s.ActualIns...))
		}
	}
	return out
}

// narrowCriterion picks the last printf (a narrow single-global print in
// the generated suites, where partial liveness — and hence specialization —
// actually occurs; the first printf is the everything-live aggregate).
func narrowCriterion(g *sdg.Graph) []sdg.VertexID {
	sites := printfSites(g)
	return sites[len(sites)-1]
}
