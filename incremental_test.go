package specslice_test

// Incremental equivalence oracle (TESTING.md, Layer 4): for random
// (program, edit-script, criterion) triples, an engine advanced
// incrementally through every edit must produce byte-identical slices —
// polyvariant and monovariant — to an engine built from scratch on the
// same version. Criteria are re-derived from the current version's content
// (statement labels, printf sites), never from vertex IDs, so they follow
// the program through edits the way a client's criteria do; edit scripts
// come from the seeded generator in internal/workload, so any failure
// reproduces from the seeds in its message.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"specslice"
	"specslice/internal/lang"
	"specslice/internal/workload"
)

// incCriterion is one content-anchored criterion, resolvable against any
// engine serving the same program version.
type incCriterion struct {
	name    string
	resolve func(*specslice.SDG) specslice.Criterion
}

// drawIncCriteria samples criteria from the current program version: the
// printf criterion in main plus randomly drawn assignment statements
// (matched by procedure name and printed label).
func drawIncCriteria(prog *lang.Program, rng *rand.Rand, n int) []incCriterion {
	out := []incCriterion{{
		name:    "printf:main",
		resolve: func(s *specslice.SDG) specslice.Criterion { return s.PrintfCriterion("main") },
	}}
	type anchor struct{ proc, label string }
	var anchors []anchor
	seen := map[anchor]bool{}
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			a, ok := s.(*lang.AssignStmt)
			if !ok {
				continue
			}
			k := anchor{fn.Name, a.LHS + " = " + lang.ExprString(a.RHS)}
			if !seen[k] {
				seen[k] = true
				anchors = append(anchors, k)
			}
		}
	}
	for len(out) < n && len(anchors) > 0 {
		i := rng.Intn(len(anchors))
		a := anchors[i]
		anchors = append(anchors[:i], anchors[i+1:]...)
		out = append(out, incCriterion{
			name: "stmt:" + a.proc + ":" + a.label,
			resolve: func(s *specslice.SDG) specslice.Criterion {
				return s.StmtCriterion(a.proc, a.label)
			},
		})
	}
	return out
}

// sliceOutcome renders a slice attempt as comparable bytes: the emitted
// source on success, or the error text on a legitimate refusal (e.g. the
// criterion's procedure became unreachable after a call-site removal).
// Advanced and scratch engines must agree on the outcome either way.
func sliceOutcome(sl *specslice.Slice, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	src, err := sl.Source()
	if err != nil {
		return "emit-error: " + err.Error()
	}
	return src
}

func polyOutcome(e *specslice.Engine, c incCriterion) string {
	sl, err := e.SpecializationSlice(c.resolve(e.SDG()))
	return sliceOutcome(sl, err)
}

func monoOutcome(e *specslice.Engine, c incCriterion) string {
	sl, err := e.MonovariantSlice(c.resolve(e.SDG()))
	return sliceOutcome(sl, err)
}

func TestIncrementalEquivalenceOracle(t *testing.T) {
	nPrograms, scriptsPer, steps, critsPer, minTriples := 10, 2, 4, 5, 300
	if testing.Short() {
		nPrograms, scriptsPer, steps, critsPer, minTriples = 3, 1, 3, 4, 30
	}

	triples, advancedProcs, rebuiltProcs := 0, 0, 0
	for pi := 0; pi < nPrograms; pi++ {
		cfg := workload.BenchConfig{
			Name:           "inc",
			Procs:          5 + pi%6,
			TargetVertices: 150 + 40*(pi%5),
			CallSites:      12 + 3*(pi%7),
			Slices:         5,
			Seed:           int64(9000 + pi),
		}
		base := workload.Generate(cfg)
		for si := 0; si < scriptsPer; si++ {
			editSeed := int64(100*pi + si + 1)
			ed := workload.NewEditor(base, editSeed)
			critRng := rand.New(rand.NewSource(editSeed * 7919))

			cur, err := specslice.MustParse(ed.Source()).Engine()
			if err != nil {
				t.Fatalf("prog %d script %d: base engine: %v", cfg.Seed, editSeed, err)
			}

			for step := 0; step < steps; step++ {
				ed.Step()
				src := ed.Source()
				newProg, err := specslice.Parse(src)
				if err != nil {
					t.Fatalf("prog %d script %d step %d: edited program invalid: %v\nops: %v",
						cfg.Seed, editSeed, step, err, ed.Ops)
				}
				next, stats, err := cur.Advance(newProg)
				if err != nil {
					t.Fatalf("prog %d script %d step %d: advance: %v\nops: %v",
						cfg.Seed, editSeed, step, err, ed.Ops)
				}
				scratch, err := specslice.MustParse(src).Engine()
				if err != nil {
					t.Fatalf("prog %d script %d step %d: scratch engine: %v", cfg.Seed, editSeed, step, err)
				}
				advancedProcs += stats.ProcsReused
				rebuiltProcs += stats.ProcsRebuilt

				ast, err := lang.Parse(src)
				if err != nil {
					t.Fatalf("prog %d script %d step %d: reparse: %v", cfg.Seed, editSeed, step, err)
				}
				for _, c := range drawIncCriteria(ast, critRng, critsPer) {
					id := fmt.Sprintf("prog %d script %d step %d %s (ops %v)", cfg.Seed, editSeed, step, c.name, ed.Ops)
					if got, want := polyOutcome(next, c), polyOutcome(scratch, c); got != want {
						t.Fatalf("%s: poly slice diverges\n--- advanced\n%s\n--- scratch\n%s", id, got, want)
					}
					if got, want := monoOutcome(next, c), monoOutcome(scratch, c); got != want {
						t.Fatalf("%s: mono slice diverges\n--- advanced\n%s\n--- scratch\n%s", id, got, want)
					}
					triples++
				}
				cur = next
			}
		}
	}
	t.Logf("oracle: %d triples byte-identical (poly+mono); %d PDGs reused, %d rebuilt across advances",
		triples, advancedProcs, rebuiltProcs)
	if triples < minTriples {
		t.Errorf("only %d triples checked, want >= %d", triples, minTriples)
	}
	if advancedProcs == 0 {
		t.Error("no procedure dependence graphs were ever reused — Advance is degenerating to full rebuilds")
	}
}

// TestLineCriterionReanchor checks the cache-hit guarantee of PR 3 carried
// into version chains: a line criterion resolves against the normalized
// program text, so after an edit shifts the target statement to a new
// line, the re-anchored line on the advanced engine selects the same
// statement — and slices identically to a from-scratch build (and, when
// the inserted code is irrelevant to the criterion, identically to the
// pre-edit slice).
func TestLineCriterionReanchor(t *testing.T) {
	const base = `
int total;
int noise;

void bump(int v) {
  total = total + v;
}

int main() {
  int i = 0;
  scanf("%d", &i);
  bump(i);
  bump(7);
  printf("%d\n", total);
  return 0;
}
`
	const target = "total = total + v;" // the anchor statement
	tests := []struct {
		name string
		edit func(string) string
		// sameSlice: the edit is irrelevant to the criterion, so the
		// re-anchored slice must equal the pre-edit slice byte for byte.
		sameSlice bool
	}{
		{
			name:      "reformat only, line unchanged",
			edit:      func(s string) string { return strings.ReplaceAll(s, "\n  ", "\n      ") },
			sameSlice: true,
		},
		{
			name: "irrelevant insert above shifts the line down",
			edit: func(s string) string {
				return strings.Replace(s, "void bump", "void chatter(int z) {\n  noise = z;\n}\n\nvoid bump", 1)
			},
			sameSlice: true,
		},
		{
			name: "irrelevant insert in main shifts the line",
			edit: func(s string) string {
				return strings.Replace(s, "int i = 0;", "int i = 0;\n  noise = 5;", 1)
			},
			sameSlice: true,
		},
		{
			name: "relevant insert shifts the line and changes the slice",
			edit: func(s string) string {
				return strings.Replace(s, "bump(i);", "bump(3);\n  bump(i);", 1)
			},
			sameSlice: false,
		},
	}

	lineOf := func(t *testing.T, norm string) int {
		t.Helper()
		for i, ln := range strings.Split(norm, "\n") {
			if strings.Contains(ln, target) {
				return i + 1
			}
		}
		t.Fatalf("anchor %q not in normalized source:\n%s", target, norm)
		return 0
	}
	// sliceAtAnchor re-anchors the criterion by content: it finds the
	// anchor statement's line in the version's normalized source — the
	// text behind the engine's ProgramKey — and slices there. It returns
	// the poly slice (compared advanced-vs-scratch, where numbering is
	// identical) and the mono slice (compared across versions: its stable
	// variant naming makes byte equality prove the criterion selected the
	// same statement even though other vertex IDs shifted).
	sliceAtAnchor := func(t *testing.T, e *specslice.Engine, norm string) (poly, mono string) {
		t.Helper()
		c := e.SDG().LineCriterion(lineOf(t, norm))
		psl, err := e.SpecializationSlice(c)
		if err != nil {
			t.Fatalf("poly slice at anchor: %v", err)
		}
		if poly, err = psl.Source(); err != nil {
			t.Fatalf("poly emit: %v", err)
		}
		msl, err := e.MonovariantSlice(c)
		if err != nil {
			t.Fatalf("mono slice at anchor: %v", err)
		}
		if mono, err = msl.Source(); err != nil {
			t.Fatalf("mono emit: %v", err)
		}
		return poly, mono
	}

	// canon parses the canonical normalized source, as the server does: a
	// line criterion resolves against the normalized program's numbering,
	// whatever formatting the client sent.
	canon := func(src string) *specslice.Program {
		return specslice.MustParse(specslice.MustParse(src).Source())
	}

	baseProg := canon(base)
	baseEng, err := baseProg.Engine()
	if err != nil {
		t.Fatal(err)
	}
	_, baseMono := sliceAtAnchor(t, baseEng, baseProg.Source())

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			edited := canon(tc.edit(base))
			adv, _, err := baseEng.Advance(edited)
			if err != nil {
				t.Fatalf("advance: %v", err)
			}
			gotPoly, gotMono := sliceAtAnchor(t, adv, edited.Source())
			scratchProg := canon(tc.edit(base))
			scratchEng, err := scratchProg.Engine()
			if err != nil {
				t.Fatal(err)
			}
			wantPoly, wantMono := sliceAtAnchor(t, scratchEng, scratchProg.Source())
			if gotPoly != wantPoly {
				t.Errorf("advanced poly line slice differs from scratch:\n--- advanced\n%s\n--- scratch\n%s", gotPoly, wantPoly)
			}
			if gotMono != wantMono {
				t.Errorf("advanced mono line slice differs from scratch:\n--- advanced\n%s\n--- scratch\n%s", gotMono, wantMono)
			}
			if tc.sameSlice && gotMono != baseMono {
				t.Errorf("criterion did not re-anchor: slice changed though the edit is irrelevant\n--- before\n%s\n--- after\n%s", baseMono, gotMono)
			}
			if !tc.sameSlice && gotMono == baseMono {
				t.Errorf("slice unchanged though the edit is relevant to the criterion")
			}
		})
	}
}

// FuzzAdvance drives the incremental engine with fuzzer-chosen program and
// edit-script seeds, holding advanced and scratch slices byte-identical.
// The seed corpus spans every edit kind via the generator seeds the unit
// tests rely on.
func FuzzAdvance(f *testing.F) {
	f.Add(int64(1), int64(1), uint8(2))
	f.Add(int64(2), int64(7), uint8(3))
	f.Add(int64(3), int64(42), uint8(1))
	f.Add(int64(9001), int64(5), uint8(4))
	f.Fuzz(func(t *testing.T, progSeed, editSeed int64, steps uint8) {
		cfg := workload.BenchConfig{
			Name:           "fuzz",
			Procs:          4 + int(uint64(progSeed)%4),
			TargetVertices: 120 + int(uint64(progSeed)%120),
			CallSites:      8 + int(uint64(progSeed)%10),
			Slices:         4,
			Seed:           progSeed,
		}
		ed := workload.NewEditor(workload.Generate(cfg), editSeed)
		cur, err := specslice.MustParse(ed.Source()).Engine()
		if err != nil {
			t.Skip("base program does not analyze")
		}
		n := 1 + int(steps%4)
		for i := 0; i < n; i++ {
			ed.Step()
			prog, err := specslice.Parse(ed.Source())
			if err != nil {
				t.Fatalf("edited program invalid: %v\nops: %v", err, ed.Ops)
			}
			next, _, err := cur.Advance(prog)
			if err != nil {
				t.Fatalf("advance: %v\nops: %v", err, ed.Ops)
			}
			scratch, err := specslice.MustParse(ed.Source()).Engine()
			if err != nil {
				t.Fatalf("scratch engine: %v\nops: %v", err, ed.Ops)
			}
			c := incCriterion{
				name:    "printf:main",
				resolve: func(s *specslice.SDG) specslice.Criterion { return s.PrintfCriterion("main") },
			}
			if got, want := polyOutcome(next, c), polyOutcome(scratch, c); got != want {
				t.Fatalf("step %d: poly slice diverges (ops %v)\n--- advanced\n%s\n--- scratch\n%s", i, ed.Ops, got, want)
			}
			if got, want := monoOutcome(next, c), monoOutcome(scratch, c); got != want {
				t.Fatalf("step %d: mono slice diverges (ops %v)\n--- advanced\n%s\n--- scratch\n%s", i, ed.Ops, got, want)
			}
			cur = next
		}
	})
}
