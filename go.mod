module specslice

go 1.24
