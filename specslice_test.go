package specslice_test

import (
	"reflect"
	"strings"
	"testing"

	"specslice"
	"specslice/internal/workload"
)

func TestFacadeQuickstart(t *testing.T) {
	prog := specslice.MustParse(workload.Fig1Source)
	g, err := prog.SDG()
	if err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Procs != 2 || st.Vertices == 0 {
		t.Errorf("stats = %+v", st)
	}
	sl, err := g.SpecializationSlice(g.PrintfCriterion("main"))
	if err != nil {
		t.Fatal(err)
	}
	if sl.VariantCounts()["p"] != 2 {
		t.Errorf("variants of p = %d, want 2", sl.VariantCounts()["p"])
	}
	out, err := sl.Program()
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := prog.Run(specslice.RunOptions{})
	r2, err := out.Run(specslice.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Output, r2.Output) {
		t.Errorf("outputs differ: %v vs %v", r1.Output, r2.Output)
	}
	if err := sl.SelfCheck(); err != nil {
		t.Errorf("self-check: %v", err)
	}
}

func TestFacadeCriteria(t *testing.T) {
	prog := specslice.MustParse(workload.Fig16Source)
	g, err := prog.SDG()
	if err != nil {
		t.Fatal(err)
	}
	// Line criterion: slicing on tally's call line.
	line := 0
	for i, l := range strings.Split(workload.Fig16Source, "\n") {
		if strings.Contains(l, "tally(10);") {
			line = i + 1
		}
	}
	sl, err := g.SpecializationSlice(g.LineCriterion(line))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sl.Program(); err != nil {
		t.Fatal(err)
	}
	// Bad criteria produce errors, not panics.
	if _, err := g.SpecializationSlice(g.LineCriterion(99999)); err == nil {
		t.Error("want error for empty line criterion")
	}
	if _, err := g.SpecializationSlice(g.PrintfCriterion("nosuch")); err == nil {
		t.Error("want error for printf criterion in unknown proc")
	}
}

func TestFacadeFeatureRemoval(t *testing.T) {
	prog := specslice.MustParse(workload.Fig16Source)
	g, err := prog.SDG()
	if err != nil {
		t.Fatal(err)
	}
	sl, err := g.RemoveFeature(g.StmtCriterion("main", "prod = 1"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sl.Program()
	if err != nil {
		t.Fatal(err)
	}
	r, err := out.Run(specslice.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.Output, "")
	if !strings.Contains(joined, "55") || strings.Contains(joined, "3628800") {
		t.Errorf("feature removal output = %v", r.Output)
	}
}

func TestFacadeMonoAndWeiser(t *testing.T) {
	prog := specslice.MustParse(workload.Fig1Source)
	g, err := prog.SDG()
	if err != nil {
		t.Fatal(err)
	}
	crit := g.PrintfCriterion("main")
	monoSl, err := g.MonovariantSlice(crit)
	if err != nil {
		t.Fatal(err)
	}
	weiserSl, err := g.WeiserSlice(crit)
	if err != nil {
		t.Fatal(err)
	}
	for _, sl := range []*specslice.Slice{monoSl, weiserSl} {
		for _, n := range sl.VariantCounts() {
			if n != 1 {
				t.Error("monovariant slice with multiple variants")
			}
		}
		out, err := sl.Program()
		if err != nil {
			t.Fatal(err)
		}
		r, err := out.Run(specslice.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Output[0] != "5" {
			t.Errorf("output = %v, want [5]", r.Output)
		}
	}
	// Self-check is a polyvariant-only feature.
	if err := monoSl.SelfCheck(); err == nil {
		t.Error("want error from SelfCheck on a monovariant slice")
	}
	// Closure size baseline must be positive and ≤ mono vertices.
	n, err := g.ClosureSliceSize(crit)
	if err != nil || n == 0 {
		t.Errorf("closure size = %d, %v", n, err)
	}
}

func TestFacadeFuncptr(t *testing.T) {
	prog := specslice.MustParse(workload.Fig15Source)
	if _, err := prog.SDG(); err == nil {
		t.Fatal("SDG must reject indirect calls")
	}
	direct, err := prog.EliminateIndirectCalls()
	if err != nil {
		t.Fatal(err)
	}
	g, err := direct.SDG()
	if err != nil {
		t.Fatal(err)
	}
	sl, err := g.SpecializationSlice(g.PrintfCriterion("main"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sl.Program()
	if err != nil {
		t.Fatal(err)
	}
	r, err := out.Run(specslice.RunOptions{Input: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Output[0] != "3" {
		t.Errorf("output = %v, want [3]", r.Output)
	}
}
