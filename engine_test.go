package specslice_test

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"specslice"
	"specslice/internal/workload"
)

// fig16Lines returns the line numbers of statements matching each needle in
// Fig. 16's source, for building distinct line criteria.
func fig16Lines(t *testing.T, needles ...string) []int {
	t.Helper()
	lines := make([]int, len(needles))
	for i, needle := range needles {
		for ln, text := range strings.Split(workload.Fig16Source, "\n") {
			if strings.Contains(text, needle) {
				lines[i] = ln + 1
				break
			}
		}
		if lines[i] == 0 {
			t.Fatalf("needle %q not in Fig16Source", needle)
		}
	}
	return lines
}

// TestEngineConcurrentSlicing hammers one shared engine from many
// goroutines with different criteria and modes; run it under -race to
// verify the engine's shared caches (encoding, reachable configurations,
// summary edges) are safe for concurrent use.
func TestEngineConcurrentSlicing(t *testing.T) {
	prog := specslice.MustParse(workload.Fig16Source)
	eng, err := prog.Engine()
	if err != nil {
		t.Fatal(err)
	}
	g := eng.SDG()
	lines := fig16Lines(t, "sum = add(sum, i)", "prod = mult(prod, i)", "i = add(i, 1)")

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*4)
	for w := 0; w < goroutines; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			crits := []specslice.Criterion{
				g.PrintfCriterion("main"),
				g.LineCriterion(lines[w%len(lines)]),
			}
			for _, c := range crits {
				if _, err := eng.SpecializationSlice(c); err != nil {
					errs <- fmt.Errorf("worker %d poly: %w", w, err)
				}
				if _, err := eng.MonovariantSlice(c); err != nil {
					errs <- fmt.Errorf("worker %d mono: %w", w, err)
				}
			}
			if _, err := eng.WeiserSlice(g.PrintfCriterion("main")); err != nil {
				errs <- fmt.Errorf("worker %d weiser: %w", w, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestEngineColdMonoPolyRace targets the worst-case interleaving on a
// fresh (cold, unwarmed) engine: the very first monovariant request runs
// the summary-edge fixpoint — the engine's only graph mutation — while a
// polyvariant request reads the graph. Run under -race; every request path
// must join the fixpoint before touching the graph.
func TestEngineColdMonoPolyRace(t *testing.T) {
	for round := 0; round < 5; round++ {
		eng, err := specslice.MustParse(workload.Fig16Source).Engine()
		if err != nil {
			t.Fatal(err)
		}
		g := eng.SDG()
		var wg sync.WaitGroup
		errs := make(chan error, 2)
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := eng.MonovariantSlice(g.PrintfCriterion("main")); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := eng.SpecializationSlice(g.PrintfCriterion("main")); err != nil {
				errs <- err
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}

// TestEngineWarmMatchesOneShot checks that slices served from a warmed,
// reused engine are identical to one-shot slices of a fresh SDG.
func TestEngineWarmMatchesOneShot(t *testing.T) {
	eng, err := specslice.MustParse(workload.Fig1Source).Engine()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Warm(); err != nil {
		t.Fatal(err)
	}
	warm, err := eng.SpecializationSlice(eng.SDG().PrintfCriterion("main"))
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := specslice.MustParse(workload.Fig1Source).SDG()
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := fresh.SpecializationSlice(fresh.PrintfCriterion("main"))
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(warm.VariantCounts(), oneShot.VariantCounts()) {
		t.Errorf("variant counts differ: warm %v, one-shot %v", warm.VariantCounts(), oneShot.VariantCounts())
	}
	wp, err := warm.Program()
	if err != nil {
		t.Fatal(err)
	}
	op, err := oneShot.Program()
	if err != nil {
		t.Fatal(err)
	}
	if wp.Source() != op.Source() {
		t.Errorf("programs differ:\nwarm:\n%s\none-shot:\n%s", wp.Source(), op.Source())
	}
	if err := warm.SelfCheck(); err != nil {
		t.Errorf("self-check on warm slice: %v", err)
	}
}

// TestSliceAllBatch runs a ≥16-request mixed batch through the engine and
// checks per-request results, ordering, and aggregate stats.
func TestSliceAllBatch(t *testing.T) {
	prog := specslice.MustParse(workload.Fig16Source)
	eng, err := prog.Engine()
	if err != nil {
		t.Fatal(err)
	}
	g := eng.SDG()
	lines := fig16Lines(t, "sum = add(sum, i)", "prod = mult(prod, i)", "i = add(i, 1)")

	var reqs []specslice.BatchRequest
	for i := 0; i < 16; i++ {
		var c specslice.Criterion
		if i%2 == 0 {
			c = g.PrintfCriterion("main")
		} else {
			c = g.LineCriterion(lines[i%len(lines)])
		}
		mode := specslice.BatchPoly
		if i%5 == 4 {
			mode = specslice.BatchMono
		}
		reqs = append(reqs, specslice.BatchRequest{Criterion: c, Mode: mode, Label: fmt.Sprintf("req-%d", i)})
	}

	results, stats := eng.SliceAll(reqs, specslice.BatchOptions{Workers: 8})
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	if stats.Requests != 16 || stats.Failed != 0 {
		t.Errorf("stats = %+v, want 16 requests, 0 failed", stats)
	}
	if stats.Wall <= 0 || stats.Work <= 0 {
		t.Errorf("timings not recorded: %+v", stats)
	}
	for i, r := range results {
		if r.Label != fmt.Sprintf("req-%d", i) {
			t.Errorf("result %d out of order: label %s", i, r.Label)
		}
		if r.Err != nil {
			t.Errorf("request %d: %v", i, r.Err)
			continue
		}
		if r.Slice == nil || r.Slice.Vertices() == 0 {
			t.Errorf("request %d: empty slice", i)
		}
		if r.Duration <= 0 {
			t.Errorf("request %d: no duration", i)
		}
		if _, err := r.Slice.Program(); err != nil {
			t.Errorf("request %d: emit: %v", i, err)
		}
	}
}

// TestSliceAllErrorPaths pushes criterion misses (LineCriterion on a
// nonexistent line, StmtCriterion on a nonexistent statement, printf in an
// unknown proc) through the batch API: each failure must land in its own
// result and leave the rest of the batch intact.
func TestSliceAllErrorPaths(t *testing.T) {
	prog := specslice.MustParse(workload.Fig16Source)
	eng, err := prog.Engine()
	if err != nil {
		t.Fatal(err)
	}
	g := eng.SDG()

	reqs := []specslice.BatchRequest{
		{Criterion: g.PrintfCriterion("main"), Label: "good-printf"},
		{Criterion: g.LineCriterion(99999), Label: "bad-line"},
		{Criterion: g.StmtCriterion("main", "no such stmt"), Label: "bad-stmt"},
		{Criterion: g.PrintfCriterion("nosuch"), Label: "bad-proc"},
		{Criterion: g.StmtCriterion("main", "prod = 1"), Mode: specslice.BatchFeature, Label: "good-feature"},
	}
	results, stats := eng.SliceAll(reqs, specslice.BatchOptions{Workers: 4})
	if stats.Failed != 3 {
		t.Errorf("failed = %d, want 3", stats.Failed)
	}
	wantErr := map[string]string{
		"bad-line": "no statement on line",
		"bad-stmt": "no statement",
		"bad-proc": "no printf",
	}
	for _, r := range results {
		if want, bad := wantErr[r.Label]; bad {
			if r.Err == nil || !strings.Contains(r.Err.Error(), want) {
				t.Errorf("%s: err = %v, want %q", r.Label, r.Err, want)
			}
			if r.Slice != nil {
				t.Errorf("%s: failed request has a slice", r.Label)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("%s: unexpected error %v", r.Label, r.Err)
		}
	}

	// The good feature-removal request must behave like the one-shot API.
	var featureRes *specslice.BatchResult
	for i := range results {
		if results[i].Label == "good-feature" {
			featureRes = &results[i]
		}
	}
	if featureRes == nil || featureRes.Err != nil {
		t.Fatalf("good-feature missing or failed: %+v", featureRes)
	}
	out, err := featureRes.Slice.Program()
	if err != nil {
		t.Fatal(err)
	}
	run, err := out.Run(specslice.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(run.Output, "")
	if !strings.Contains(joined, "55") || strings.Contains(joined, "3628800") {
		t.Errorf("feature removal through batch API: output %v", run.Output)
	}
}

// TestSliceAllEmpty covers the zero-request edge.
func TestSliceAllEmpty(t *testing.T) {
	eng, err := specslice.MustParse(workload.Fig1Source).Engine()
	if err != nil {
		t.Fatal(err)
	}
	results, stats := eng.SliceAll(nil, specslice.BatchOptions{})
	if len(results) != 0 || stats.Requests != 0 || stats.Failed != 0 {
		t.Errorf("empty batch: results=%d stats=%+v", len(results), stats)
	}
}
