// Command sdgdot renders a MicroC program's system dependence graph — or
// the specialized SDG of a slice — in Graphviz DOT form, in the style of
// the paper's Figs. 3, 5, and 6.
//
// Usage:
//
//	sdgdot file.mc                 # the program's SDG
//	sdgdot -slice printf file.mc   # the specialized SDG of the slice
package main

import (
	"flag"
	"fmt"
	"os"

	"specslice/internal/core"
	"specslice/internal/funcptr"
	"specslice/internal/lang"
	"specslice/internal/sdg"
)

func main() {
	slice := flag.String("slice", "", `empty for the full SDG, or "printf" to specialize on main's printfs`)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sdgdot [-slice printf] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	prog, _, err = funcptr.Transform(prog)
	if err != nil {
		fatal(err)
	}
	g, err := sdg.Build(prog)
	if err != nil {
		fatal(err)
	}
	if *slice != "" {
		var cfgs core.Configs
		for _, v := range core.PrintfCriterion(g, "main") {
			cfgs = append(cfgs, core.Config{Vertex: v})
		}
		res, err := core.Specialize(g, cfgs)
		if err != nil {
			fatal(err)
		}
		g = res.R
	}
	fmt.Print(dot(g))
}

func dot(g *sdg.Graph) string {
	out := "digraph sdg {\n  rankdir=TB;\n  node [shape=box, fontsize=9];\n"
	for _, p := range g.Procs {
		out += fmt.Sprintf("  subgraph cluster_%d {\n    label=%q;\n", p.Index, p.Name)
		for _, v := range p.Vertices {
			vx := g.Vertices[v]
			shape := "box"
			switch vx.Kind {
			case sdg.KindEntry:
				shape = "house"
			case sdg.KindFormalIn, sdg.KindFormalOut, sdg.KindActualIn, sdg.KindActualOut:
				shape = "ellipse"
			case sdg.KindPredicate:
				shape = "diamond"
			}
			out += fmt.Sprintf("    v%d [label=%q, shape=%s];\n", v, vx.Label, shape)
		}
		out += "  }\n"
	}
	style := map[sdg.EdgeKind]string{
		sdg.EdgeControl:  "[color=black]",
		sdg.EdgeFlow:     "[color=blue]",
		sdg.EdgeCall:     "[color=red, style=dashed]",
		sdg.EdgeParamIn:  "[color=darkgreen, style=dashed]",
		sdg.EdgeParamOut: "[color=purple, style=dashed]",
		sdg.EdgeSummary:  "[color=gray, style=dotted]",
	}
	for _, e := range g.Edges() {
		out += fmt.Sprintf("  v%d -> v%d %s;\n", e.From, e.To, style[e.Kind])
	}
	return out + "}\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdgdot:", err)
	os.Exit(1)
}
