// Command experiments regenerates the paper's evaluation tables and
// figures (§8 Figs. 17–22, the §4.2 determinize observation, the §4.3
// exponential family, and the §5 wc speed-up).
//
// Usage:
//
//	experiments                 # every table, full 12-program suite
//	experiments -quick          # Siemens-suite-sized programs only
//	experiments -table fig19    # one table
//	experiments -table fig13 -maxk 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"specslice/internal/experiments"
	"specslice/internal/workload"
)

func main() {
	table := flag.String("table", "all", "fig13 | fig17 | fig18 | fig19 | fig20 | fig21 | fig22 | determinize | wc | all")
	quick := flag.Bool("quick", false, "small suites only")
	maxK := flag.Int("maxk", 7, "largest k for the fig13 exponential family")
	flag.Parse()

	needSuites := map[string]bool{
		"fig17": true, "fig18": true, "fig19": true,
		"fig20": true, "fig21": true, "fig22": true, "determinize": true, "all": true,
	}[*table]

	var results []*experiments.SuiteResult
	if needSuites {
		cfgs := workload.Benchmarks()
		if *quick {
			cfgs = workload.SmallBenchmarks()
		}
		var err error
		results, err = experiments.RunAll(cfgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	emit := func(name, out string) {
		if *table == "all" || *table == name {
			fmt.Println(out)
			fmt.Println(strings.Repeat("-", 72))
		}
	}
	if needSuites {
		emit("fig17", experiments.Fig17(results))
		emit("fig18", experiments.Fig18(results))
		emit("fig19", experiments.Fig19(results))
		emit("fig20", experiments.Fig20(results))
		emit("fig21", experiments.Fig21(results))
		emit("fig22", experiments.Fig22(results))
		emit("determinize", experiments.DeterminizeTable(results))
	}
	emit("fig13", experiments.Fig13Table(*maxK))
	emit("wc", experiments.WcTable())
}
