// Command experiments regenerates the paper's evaluation tables and
// figures (§8 Figs. 17–22, the §4.2 determinize observation, the §4.3
// exponential family, and the §5 wc speed-up).
//
// Usage:
//
//	experiments                 # every table, full 12-program suite
//	experiments -quick          # Siemens-suite-sized programs only
//	experiments -table fig19    # one table
//	experiments -table fig13 -maxk 8
//	experiments -json           # also write BENCH_engine.json (cold vs warm)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"specslice/internal/experiments"
	"specslice/internal/workload"
)

func main() {
	table := flag.String("table", "all", "fig13 | fig17 | fig18 | fig19 | fig20 | fig21 | fig22 | determinize | wc | all | none")
	quick := flag.Bool("quick", false, "small suites only")
	maxK := flag.Int("maxk", 7, "largest k for the fig13 exponential family")
	jsonOut := flag.Bool("json", false, "write machine-readable engine timings to BENCH_engine.json")
	benchIters := flag.Int("bench-iters", 20, "iterations per -json timing loop")
	workers := flag.Int("workers", 0, "SliceAll worker-pool size for the -json batch (0 = GOMAXPROCS)")
	workloadDur := flag.Duration("workload-duration", 5*time.Second, "per-scenario length of the -json workload runs (0 = skip the workloads block)")
	workloadSeed := flag.Int64("workload-seed", 1, "schedule seed for the -json workload runs")
	flag.Parse()

	if *jsonOut {
		eb, err := experiments.RunEngineBench(*benchIters, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if *workloadDur > 0 {
			if err := eb.RunWorkloads(*workloadDur, *workloadSeed); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		if err := eb.WriteJSON("BENCH_engine.json"); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("BENCH_engine.json: cold %.0fns/op, warm %.0fns/op (%.1fx, %.0f allocs/op), batch %d/%d workers %.1fx\n",
			eb.ColdNsPerOp, eb.WarmNsPerOp, eb.WarmSpeedup, eb.WarmAllocsPerOp, eb.BatchSize, eb.Workers, eb.BatchSpeedup)
		fmt.Printf("  advance (%s, %d single-proc edits): %.0fns/op incremental vs %.0fns/op cold = %.1fx\n",
			eb.AdvanceSuite, eb.AdvanceEdits, eb.IncrementalNsPerOp, eb.AdvanceColdNsPerOp, eb.AdvanceSpeedup)
		for _, w := range eb.Workloads {
			fmt.Printf("  workload %s: %.0f/%.0f ops/sec, p50 %v p99 %v p99.9 %v, %d errors, %d shed\n",
				w.Name, w.AchievedOpsPerSec, w.TargetOpsPerSec,
				time.Duration(w.P50NS), time.Duration(w.P99NS), time.Duration(w.P999NS),
				w.Errors, w.Shed)
		}
		if *table == "none" {
			return
		}
	}

	needSuites := map[string]bool{
		"fig17": true, "fig18": true, "fig19": true,
		"fig20": true, "fig21": true, "fig22": true, "determinize": true, "all": true,
	}[*table]

	var results []*experiments.SuiteResult
	if needSuites {
		cfgs := workload.Benchmarks()
		if *quick {
			cfgs = workload.SmallBenchmarks()
		}
		var err error
		results, err = experiments.RunAll(cfgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	emit := func(name, out string) {
		if *table == "all" || *table == name {
			fmt.Println(out)
			fmt.Println(strings.Repeat("-", 72))
		}
	}
	if needSuites {
		emit("fig17", experiments.Fig17(results))
		emit("fig18", experiments.Fig18(results))
		emit("fig19", experiments.Fig19(results))
		emit("fig20", experiments.Fig20(results))
		emit("fig21", experiments.Fig21(results))
		emit("fig22", experiments.Fig22(results))
		emit("determinize", experiments.DeterminizeTable(results))
	}
	emit("fig13", experiments.Fig13Table(*maxK))
	emit("wc", experiments.WcTable())
}
