// Command specslice slices a MicroC program.
//
// Usage:
//
//	specslice -mode poly  -criterion printf[:proc] file.mc
//	specslice -mode mono  -criterion line:17 file.mc
//	specslice -mode weiser -criterion printf file.mc
//	specslice -mode feature -criterion stmt:main:"prod = 1" file.mc
//	specslice -criteria "printf:main;line:17;line:23" -workers 4 file.mc
//	specslice serve -addr :8080
//
// Modes: poly (specialization slicing, the paper's Alg. 1), mono (Binkley's
// monovariant executable slicing), weiser (Weiser-style baseline), feature
// (paper §7 feature removal; the criterion seeds a *forward* slice that is
// removed). The sliced program is printed to stdout.
//
// With -criteria, a semicolon-separated list of criteria is served as one
// batch through the shared slicing engine (SDG, PDS encoding, and summary
// edges built once) across -workers parallel workers; each slice is printed
// with a "// === slice" header, and per-request failures are reported to
// stderr without aborting the batch.
//
// The serve subcommand runs the HTTP/JSON slicing service (POST /v1/slice,
// GET /v1/stats, GET /healthz) backed by a content-addressed engine cache;
// see internal/server and the README's Serving section.
//
// The route subcommand runs the sharded topology on one machine: it
// spawns N `specslice serve` workers as subprocesses on ephemeral
// loopback ports and fronts them with the coordinator/router, which
// consistent-hashes program families across the workers, deduplicates
// in-flight builds cluster-wide, health-checks membership (rebalancing
// deterministically when a worker dies or recovers), and applies
// per-tenant token-bucket admission plus hot-shard load-shedding (429 +
// Retry-After):
//
//	specslice route -workers 4 -addr :8080
//	specslice route -workers 4 -tenant-rate 200 -shard-inflight 64
//
// On SIGINT/SIGTERM the router drains in-flight requests, then each
// worker is terminated gracefully (workers drain and close their stores
// cleanly). See internal/cluster and the README's Sharded serving
// section.
//
// The bench subcommand drives a named workload scenario (read_heavy,
// write_heavy, balanced) against the real HTTP slice path with an
// open-loop Zipfian schedule and prints the tail-latency report:
//
//	specslice bench -scenario read_heavy -rate 400 -duration 10s
//	specslice bench -scenario write_heavy -url http://host:8080
//
// Without -url it boots its own in-process server on a loopback listener;
// see internal/loadgen and the README's Load testing section.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"encoding/json"
	"net/http"
	"path/filepath"

	"specslice"
	"specslice/internal/cluster"
	"specslice/internal/loadgen"
	"specslice/internal/server"
)

// serve runs the HTTP slicing service until SIGINT/SIGTERM, then drains
// in-flight requests.
func serve(args []string) {
	fs := flag.NewFlagSet("specslice serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheEntries := fs.Int("cache-entries", 64, "engine cache entry budget (<0 = unbounded)")
	cacheMB := fs.Int64("cache-mb", 512, "engine cache byte budget in MiB (<0 = unbounded)")
	maxProgramKB := fs.Int64("max-program-kb", 1024, "largest accepted program source in KiB")
	maxCriteria := fs.Int("max-criteria", 256, "largest accepted criterion batch")
	workers := fs.Int("workers", 0, "per-batch worker-pool size (0 = GOMAXPROCS)")
	storeDir := fs.String("store-dir", "", "directory for the persistent snapshot tier (empty = RAM cache only)")
	storeBudgetBytes := fs.Int64("store-budget-bytes", 0, "disk budget for the snapshot tier; oldest segments dropped past it (0 = unlimited)")
	_ = fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: specslice serve [flags]")
		fs.Usage()
		os.Exit(2)
	}

	srv, err := server.New(server.Config{
		CacheMaxEntries:  *cacheEntries,
		CacheMaxBytes:    *cacheMB << 20,
		MaxProgramBytes:  *maxProgramKB << 10,
		MaxCriteria:      *maxCriteria,
		Workers:          *workers,
		StoreDir:         *storeDir,
		StoreBudgetBytes: *storeBudgetBytes,
	})
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Log the resolved address (not the flag) so :0 reports its bound port —
	// the restart integration test discovers the port from this line.
	if *storeDir != "" {
		log.Printf("specslice: store %s (budget %d bytes)", *storeDir, *storeBudgetBytes)
	}
	log.Printf("specslice: listening on %s (cache: %d entries, %d MiB)", ln.Addr(), *cacheEntries, *cacheMB)
	if err := srv.Serve(ctx, ln); err != nil {
		fatal(err)
	}
	log.Printf("specslice: drained, bye")
}

// route runs the sharded serving topology: N spawned worker subprocesses
// behind the consistent-hash router, until SIGINT/SIGTERM.
func route(args []string) {
	fs := flag.NewFlagSet("specslice route", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "router listen address")
	workers := fs.Int("workers", 4, "worker subprocesses to spawn")
	cacheEntries := fs.Int("cache-entries", 64, "per-worker engine cache entry budget (<0 = unbounded)")
	cacheMB := fs.Int64("cache-mb", 512, "per-worker engine cache byte budget in MiB (<0 = unbounded)")
	maxProgramKB := fs.Int64("max-program-kb", 1024, "largest accepted program source in KiB")
	maxCriteria := fs.Int("max-criteria", 256, "largest accepted criterion batch")
	storeDir := fs.String("store-dir", "", "base directory for per-worker persistent stores (empty = RAM only; worker i uses <dir>/wi)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant admitted requests/sec (0 = unlimited)")
	tenantBurst := fs.Int("tenant-burst", 0, "per-tenant token-bucket burst (0 = ceil(rate))")
	shardInFlight := fs.Int64("shard-inflight", 128, "per-shard in-flight depth before shedding (<0 = unlimited)")
	shardHotMB := fs.Int64("shard-hot-mb", 0, "per-shard cache byte budget before shedding, in MiB (0 = disabled)")
	_ = fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: specslice route [flags]")
		fs.Usage()
		os.Exit(2)
	}
	if *workers < 1 {
		fatal(fmt.Errorf("route needs at least 1 worker"))
	}

	bin, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	procs, err := cluster.SpawnWorkers(bin, *workers, func(i int) []string {
		wargs := []string{
			"-cache-entries", strconv.Itoa(*cacheEntries),
			"-cache-mb", strconv.FormatInt(*cacheMB, 10),
			"-max-program-kb", strconv.FormatInt(*maxProgramKB, 10),
			"-max-criteria", strconv.Itoa(*maxCriteria),
		}
		if *storeDir != "" {
			wargs = append(wargs, "-store-dir", filepath.Join(*storeDir, fmt.Sprintf("w%d", i)))
		}
		return wargs
	})
	if err != nil {
		fatal(err)
	}
	stopWorkers := func() {
		for _, p := range procs {
			if err := p.Stop(15 * time.Second); err != nil {
				log.Printf("specslice route: %v", err)
			}
		}
	}

	rt := cluster.NewRouter(cluster.Config{
		MaxProgramBytes:  *maxProgramKB << 10,
		MaxCriteria:      *maxCriteria,
		TenantRatePerSec: *tenantRate,
		TenantBurst:      *tenantBurst,
		ShardMaxInFlight: *shardInFlight,
		ShardHotBytes:    *shardHotMB << 20,
	})
	for _, p := range procs {
		rt.AddWorker(p.ID, p.URL())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		stopWorkers()
		fatal(err)
	}
	log.Printf("specslice route: listening on %s (%d workers)", ln.Addr(), len(procs))
	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		stopWorkers()
		fatal(err)
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Printf("specslice route: shutdown: %v", err)
	}
	stopWorkers()
	log.Printf("specslice route: drained, bye")
}

// bench runs one workload scenario and prints its report as JSON.
func bench(args []string) {
	fs := flag.NewFlagSet("specslice bench", flag.ExitOnError)
	scenario := fs.String("scenario", "read_heavy", "workload scenario: read_heavy | write_heavy | balanced")
	rate := fs.Float64("rate", 0, "target throughput in ops/sec (0 = the scenario default)")
	duration := fs.Duration("duration", 10*time.Second, "scheduled run length")
	seed := fs.Int64("seed", 1, "schedule seed; equal seeds replay identical runs")
	url := fs.String("url", "", "slicing service base URL (empty = boot an in-process server)")
	maxInFlight := fs.Int("max-inflight", 0, "in-flight request cap (0 = default 256)")
	_ = fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: specslice bench [flags]")
		fs.Usage()
		os.Exit(2)
	}

	sc, err := loadgen.ScenarioByName(*scenario)
	if err != nil {
		fatal(err)
	}
	sched, err := loadgen.BuildSchedule(sc, *rate, *duration, *seed)
	if err != nil {
		fatal(err)
	}
	log.Printf("specslice bench: %s, %d ops over %v (%d program versions, seed %d)",
		sc.Name, len(sched.Ops), *duration, len(sched.Sources), *seed)
	opts := loadgen.Options{MaxInFlight: *maxInFlight}
	var rep *loadgen.Report
	if *url != "" {
		rep, err = loadgen.Run(*url, sched, opts)
	} else {
		rep, err = loadgen.RunInProcess(sched, opts)
	}
	if err != nil {
		fatal(err)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
	log.Printf("specslice bench: %.0f/%.0f ops/sec achieved, p50 %v p99 %v p99.9 %v, %d errors, %d shed",
		rep.AchievedOpsPerSec, rep.TargetOpsPerSec,
		time.Duration(rep.P50NS), time.Duration(rep.P99NS), time.Duration(rep.P999NS),
		rep.Errors, rep.Shed)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serve(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "route" {
		route(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		bench(os.Args[2:])
		return
	}
	mode := flag.String("mode", "poly", "poly | mono | weiser | feature")
	criterion := flag.String("criterion", "printf", `criterion: "printf[:proc]", "line:N", or "stmt:proc:label"`)
	criteria := flag.String("criteria", "", `batch mode: semicolon-separated criteria served through one engine`)
	workers := flag.Int("workers", 0, "batch worker-pool size (0 = GOMAXPROCS)")
	check := flag.Bool("check", false, "run the reslicing self-check (poly only)")
	stats := flag.Bool("stats", false, "print SDG and slice statistics to stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: specslice [flags] file.mc")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := specslice.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	prog, err = prog.EliminateIndirectCalls()
	if err != nil {
		fatal(err)
	}
	g, err := prog.SDG()
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "SDG: %+v\n", g.Stats())
	}

	if *criteria != "" {
		batch(g, *mode, *criteria, *workers, *stats, *check)
		return
	}

	crit, err := parseCriterion(g, *criterion)
	if err != nil {
		fatal(err)
	}

	var sl *specslice.Slice
	switch *mode {
	case "poly":
		sl, err = g.SpecializationSlice(crit)
	case "mono":
		sl, err = g.MonovariantSlice(crit)
	case "weiser":
		sl, err = g.WeiserSlice(crit)
	case "feature":
		sl, err = g.RemoveFeature(crit)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "specialized versions: %v\n", sl.VariantCounts())
	}
	if *check {
		if err := sl.SelfCheck(); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "reslicing self-check passed")
	}
	out, err := sl.Program()
	if err != nil {
		fatal(err)
	}
	fmt.Print(out.Source())
}

// batch serves every semicolon-separated criterion through the shared
// engine and prints each slice under a header comment.
func batch(g *specslice.SDG, mode, criteria string, workers int, stats, check bool) {
	var bm specslice.BatchMode
	switch mode {
	case "poly":
		bm = specslice.BatchPoly
	case "mono":
		bm = specslice.BatchMono
	case "weiser":
		bm = specslice.BatchWeiser
	case "feature":
		bm = specslice.BatchFeature
	default:
		fatal(fmt.Errorf("unknown mode %q", mode))
	}
	if check && bm != specslice.BatchPoly {
		fatal(fmt.Errorf("-check applies to poly mode only"))
	}

	var reqs []specslice.BatchRequest
	for _, spec := range strings.Split(criteria, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		crit, err := parseCriterion(g, spec)
		if err != nil {
			fatal(err)
		}
		reqs = append(reqs, specslice.BatchRequest{Criterion: crit, Mode: bm, Label: spec})
	}
	if len(reqs) == 0 {
		fatal(fmt.Errorf("no criteria in %q", criteria))
	}

	results, bstats := g.Engine().SliceAll(reqs, specslice.BatchOptions{Workers: workers})
	if stats {
		fmt.Fprintf(os.Stderr, "batch: %d requests, %d failed, %d workers, wall %v, work %v\n",
			bstats.Requests, bstats.Failed, bstats.Workers, bstats.Wall, bstats.Work)
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "specslice: %s: %v\n", r.Label, r.Err)
			continue
		}
		if check {
			if err := r.Slice.SelfCheck(); err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "specslice: %s: %v\n", r.Label, err)
				continue
			}
		}
		out, err := r.Slice.Program()
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "specslice: %s: %v\n", r.Label, err)
			continue
		}
		fmt.Printf("// === slice %s (%v) ===\n%s", r.Label, r.Duration.Round(time.Microsecond), out.Source())
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func parseCriterion(g *specslice.SDG, s string) (specslice.Criterion, error) {
	switch {
	case s == "printf":
		return g.PrintfCriterion(""), nil
	case strings.HasPrefix(s, "printf:"):
		return g.PrintfCriterion(strings.TrimPrefix(s, "printf:")), nil
	case strings.HasPrefix(s, "line:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "line:"))
		if err != nil {
			return specslice.Criterion{}, fmt.Errorf("bad line number in %q", s)
		}
		return g.LineCriterion(n), nil
	case strings.HasPrefix(s, "stmt:"):
		rest := strings.TrimPrefix(s, "stmt:")
		proc, label, ok := strings.Cut(rest, ":")
		if !ok {
			return specslice.Criterion{}, fmt.Errorf("stmt criterion needs proc:label, got %q", rest)
		}
		return g.StmtCriterion(proc, label), nil
	}
	return specslice.Criterion{}, fmt.Errorf("unknown criterion %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specslice:", err)
	os.Exit(1)
}
