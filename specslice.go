// Package specslice is an executable-slicing toolkit for MicroC programs,
// reproducing "Specialization Slicing" (Aung, Horwitz, Joiner, Reps;
// PLDI 2014 / TOPLAS). It provides:
//
//   - Specialization (polyvariant executable) slicing — the paper's
//     contribution: an optimal, automaton-based slicer that may emit
//     multiple specialized copies of a procedure so the output slice is
//     executable, sound, complete, and minimal.
//   - The monovariant executable-slicing baselines (Binkley 1993,
//     Weiser-style) the paper compares against.
//   - Feature removal for multi-procedure programs (paper §7).
//   - Function-pointer / indirect-call support (paper §6.2).
//   - A MicroC front end, system-dependence-graph construction, and an
//     interpreter for validating slice behavior.
//
// Quick start:
//
//	prog, _ := specslice.Parse(src)
//	g, _ := prog.SDG()
//	slice, _ := g.SpecializationSlice(g.PrintfCriterion("main"))
//	out, _ := slice.Program()
//	fmt.Println(out.Source())
//
// The underlying machinery (pushdown systems, Prestar/Poststar, the
// minimal-reverse-deterministic automaton pipeline) lives in internal
// packages; this package is the stable surface.
package specslice

import (
	"errors"
	"fmt"

	"specslice/internal/core"
	"specslice/internal/emit"
	"specslice/internal/feature"
	"specslice/internal/funcptr"
	"specslice/internal/interp"
	"specslice/internal/lang"
	"specslice/internal/mono"
	"specslice/internal/sdg"
	"specslice/internal/slice"
)

// Program is a parsed MicroC program.
type Program struct {
	ast *lang.Program
}

// Parse parses MicroC source text.
func Parse(src string) (*Program, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{ast: ast}, nil
}

// MustParse parses src and panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Source pretty-prints the program.
func (p *Program) Source() string { return lang.Print(p.ast) }

// RunOptions configures program execution.
type RunOptions struct {
	// Input is the stream scanf reads from.
	Input []int64
	// MaxSteps bounds executed statements (default 1e7).
	MaxSteps int64
}

// RunResult reports an execution.
type RunResult struct {
	// Output holds one string per executed printf.
	Output []string
	// Steps is the number of statements executed.
	Steps int64
}

// Run interprets the program's main.
func (p *Program) Run(opts RunOptions) (*RunResult, error) {
	res, err := interp.Run(p.ast, interp.Options{Input: opts.Input, MaxSteps: opts.MaxSteps})
	if err != nil {
		return nil, err
	}
	return &RunResult{Output: res.Output, Steps: res.Steps}, nil
}

// EliminateIndirectCalls applies the paper's §6.2 transformation, returning
// a behaviorally equivalent program whose calls are all direct (indirect
// calls are routed through synthesized dispatch procedures). Programs
// without indirect calls are returned unchanged.
func (p *Program) EliminateIndirectCalls() (*Program, error) {
	out, _, err := funcptr.Transform(p.ast)
	if err != nil {
		return nil, err
	}
	return &Program{ast: out}, nil
}

// SDG builds the program's system dependence graph. Programs with indirect
// calls must call EliminateIndirectCalls first.
func (p *Program) SDG() (*SDG, error) {
	g, err := sdg.Build(p.ast)
	if err != nil {
		return nil, err
	}
	return &SDG{g: g}, nil
}

// SDG is a system dependence graph ready for slicing.
type SDG struct {
	g *sdg.Graph
}

// Stats summarizes the graph.
type Stats struct {
	Procs     int
	Vertices  int
	Edges     int
	CallSites int
}

// Stats returns summary counts.
func (s *SDG) Stats() Stats {
	st := s.g.Statistics()
	return Stats{Procs: st.Procs, Vertices: st.Vertices, Edges: st.Edges, CallSites: st.CallSites}
}

// Criterion selects the slice's target program elements.
type Criterion struct {
	vertices []sdg.VertexID
	err      error
}

// PrintfCriterion selects the arguments of every printf in the named
// procedure (or everywhere when proc is "") — the criterion shape used
// throughout the paper.
func (s *SDG) PrintfCriterion(proc string) Criterion {
	vs := core.PrintfCriterion(s.g, proc)
	if len(vs) == 0 {
		return Criterion{err: fmt.Errorf("specslice: no printf in %q", proc)}
	}
	return Criterion{vertices: vs}
}

// LineCriterion selects every statement on the given source line. A call
// statement stands for the variables it uses and defines, so its criterion
// vertices are the call's actual-in and actual-out vertices (a bare call
// vertex depends on nothing and would slice to almost nothing).
func (s *SDG) LineCriterion(line int) Criterion {
	var vs []sdg.VertexID
	for _, v := range s.g.Vertices {
		if v.Stmt == nil || v.Stmt.Base().Pos.Line != line {
			continue
		}
		switch v.Kind {
		case sdg.KindStmt, sdg.KindPredicate:
			vs = append(vs, v.ID)
		case sdg.KindCall:
			site := s.g.Sites[v.Site]
			vs = append(vs, site.ActualIns...)
			vs = append(vs, site.ActualOuts...)
			if len(site.ActualIns)+len(site.ActualOuts) == 0 {
				vs = append(vs, v.ID)
			}
		}
	}
	if len(vs) == 0 {
		return Criterion{err: fmt.Errorf("specslice: no statement on line %d", line)}
	}
	return Criterion{vertices: vs}
}

// StmtCriterion selects statements whose printed form matches label in the
// named procedure (e.g. "prod = 1").
func (s *SDG) StmtCriterion(proc, label string) Criterion {
	vs := feature.ForwardCriterion(s.g, proc, label)
	if len(vs) == 0 {
		return Criterion{err: fmt.Errorf("specslice: no statement %q in %s", label, proc)}
	}
	return Criterion{vertices: vs}
}

func (c Criterion) configs() core.Configs {
	var out core.Configs
	for _, v := range c.vertices {
		out = append(out, core.Config{Vertex: v})
	}
	return out
}

// Slice is a computed executable slice (polyvariant or monovariant).
type Slice struct {
	src      *sdg.Graph
	variants []core.ProcVariant
	counts   map[string]int
	res      *core.Result // nil for monovariant slices
	spec     core.CriterionSpec
}

// SpecializationSlice computes the paper's polyvariant executable slice
// (Alg. 1). Criterion vertices in procedures other than main are sliced in
// all of their reachable calling contexts.
func (s *SDG) SpecializationSlice(c Criterion) (*Slice, error) {
	if c.err != nil {
		return nil, c.err
	}
	var spec core.CriterionSpec
	if s.allInMain(c) {
		spec = c.configs()
	} else {
		spec = core.Vertices(c.vertices)
	}
	res, err := core.Specialize(s.g, spec)
	if err != nil {
		return nil, err
	}
	return &Slice{src: s.g, variants: res.Variants(), counts: res.VariantCounts(), res: res, spec: spec}, nil
}

func (s *SDG) allInMain(c Criterion) bool {
	for _, v := range c.vertices {
		if s.g.Procs[s.g.Vertices[v].Proc].Name != "main" {
			return false
		}
	}
	return true
}

// MonovariantSlice computes Binkley's monovariant executable slice.
func (s *SDG) MonovariantSlice(c Criterion) (*Slice, error) {
	if c.err != nil {
		return nil, c.err
	}
	res := mono.Binkley(s.g, c.vertices)
	return &Slice{src: s.g, variants: res.Variants(), counts: singleCounts(res.Variants())}, nil
}

// WeiserSlice computes the Weiser-style executable slice baseline.
func (s *SDG) WeiserSlice(c Criterion) (*Slice, error) {
	if c.err != nil {
		return nil, c.err
	}
	res := mono.Weiser(s.g, c.vertices)
	return &Slice{src: s.g, variants: res.Variants(), counts: singleCounts(res.Variants())}, nil
}

// RemoveFeature computes the paper's §7 feature removal: the program minus
// the forward slice of the criterion, specialized to stay executable.
func (s *SDG) RemoveFeature(c Criterion) (*Slice, error) {
	if c.err != nil {
		return nil, c.err
	}
	res, err := feature.Remove(s.g, c.vertices)
	if err != nil {
		return nil, err
	}
	return &Slice{src: s.g, variants: res.Variants(), counts: res.VariantCounts(), res: res}, nil
}

// ClosureSliceSize returns the number of program elements in the HRB
// closure slice from the criterion (the paper's baseline size metric).
func (s *SDG) ClosureSliceSize(c Criterion) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	slice.ComputeSummaryEdges(s.g)
	return len(slice.Backward(s.g, c.vertices)), nil
}

func singleCounts(vars []core.ProcVariant) map[string]int {
	out := map[string]int{}
	for _, v := range vars {
		out[v.Orig.Name]++
	}
	return out
}

// Program emits the slice as an executable MicroC program.
func (sl *Slice) Program() (*Program, error) {
	out, err := emit.Program(sl.src, sl.variants)
	if err != nil {
		return nil, err
	}
	return &Program{ast: out}, nil
}

// VariantCounts reports how many specialized versions each sliced
// procedure received (always 1 for monovariant slices).
func (sl *Slice) VariantCounts() map[string]int { return sl.counts }

// Vertices returns the total vertex count of the slice (counting
// replicated elements once per copy).
func (sl *Slice) Vertices() int {
	n := 0
	for _, v := range sl.variants {
		n += len(v.Vertices)
	}
	return n
}

// SelfCheck runs the paper's §8.3 reslicing validation (polyvariant slices
// only): the output, sliced again, must yield the same configuration
// language modulo renaming.
func (sl *Slice) SelfCheck() error {
	if sl.res == nil || sl.spec == nil {
		return errors.New("specslice: self-check applies to specialization slices")
	}
	return sl.res.ReslicingCheck(sl.spec)
}
