// Package specslice is an executable-slicing toolkit for MicroC programs,
// reproducing "Specialization Slicing" (Aung, Horwitz, Joiner, Reps;
// PLDI 2014 / TOPLAS). It provides:
//
//   - Specialization (polyvariant executable) slicing — the paper's
//     contribution: an optimal, automaton-based slicer that may emit
//     multiple specialized copies of a procedure so the output slice is
//     executable, sound, complete, and minimal.
//   - The monovariant executable-slicing baselines (Binkley 1993,
//     Weiser-style) the paper compares against.
//   - Feature removal for multi-procedure programs (paper §7).
//   - Function-pointer / indirect-call support (paper §6.2).
//   - A MicroC front end, system-dependence-graph construction, and an
//     interpreter for validating slice behavior.
//
// Quick start:
//
//	prog, _ := specslice.Parse(src)
//	g, _ := prog.SDG()
//	slice, _ := g.SpecializationSlice(g.PrintfCriterion("main"))
//	out, _ := slice.Program()
//	fmt.Println(out.Source())
//
// For many slices of one program, use the engine, which builds the SDG
// encoding, Prestar indexes, reachable-configuration automaton, and
// summary edges once and serves requests concurrently:
//
//	eng, _ := prog.Engine()
//	results, stats := eng.SliceAll(reqs, specslice.BatchOptions{})
//
// The underlying machinery (pushdown systems, Prestar/Poststar, the
// minimal-reverse-deterministic automaton pipeline) lives in internal
// packages; this package is the stable surface.
package specslice

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"specslice/internal/core"
	"specslice/internal/emit"
	"specslice/internal/engine"
	"specslice/internal/feature"
	"specslice/internal/funcptr"
	"specslice/internal/interp"
	"specslice/internal/lang"
	"specslice/internal/sdg"
)

// Program is a parsed MicroC program.
type Program struct {
	ast *lang.Program
}

// Parse parses MicroC source text.
func Parse(src string) (*Program, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{ast: ast}, nil
}

// MustParse parses src and panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Source pretty-prints the program.
func (p *Program) Source() string { return lang.Print(p.ast) }

// ProcNames returns the program's procedure names, sorted. Services use
// them to derive version-chain (family) keys: two versions of an evolving
// program with the same procedure set can share incremental analysis
// state through Engine.Advance.
func (p *Program) ProcNames() []string {
	out := make([]string, 0, len(p.ast.Funcs))
	for _, f := range p.ast.Funcs {
		out = append(out, f.Name)
	}
	sort.Strings(out)
	return out
}

// RunOptions configures program execution.
type RunOptions struct {
	// Input is the stream scanf reads from.
	Input []int64
	// MaxSteps bounds executed statements (default 1e7).
	MaxSteps int64
}

// RunResult reports an execution.
type RunResult struct {
	// Output holds one string per executed printf.
	Output []string
	// Steps is the number of statements executed.
	Steps int64
}

// Run interprets the program's main.
func (p *Program) Run(opts RunOptions) (*RunResult, error) {
	res, err := interp.Run(p.ast, interp.Options{Input: opts.Input, MaxSteps: opts.MaxSteps})
	if err != nil {
		return nil, err
	}
	return &RunResult{Output: res.Output, Steps: res.Steps}, nil
}

// EliminateIndirectCalls applies the paper's §6.2 transformation, returning
// a behaviorally equivalent program whose calls are all direct (indirect
// calls are routed through synthesized dispatch procedures). Programs
// without indirect calls are returned unchanged.
func (p *Program) EliminateIndirectCalls() (*Program, error) {
	out, _, err := funcptr.Transform(p.ast)
	if err != nil {
		return nil, err
	}
	return &Program{ast: out}, nil
}

// SDG builds the program's system dependence graph. Programs with indirect
// calls must call EliminateIndirectCalls first.
func (p *Program) SDG() (*SDG, error) {
	g, err := sdg.Build(p.ast)
	if err != nil {
		return nil, err
	}
	return &SDG{g: g, eng: engine.New(g)}, nil
}

// SDG is a system dependence graph ready for slicing. Every SDG is backed
// by a reusable engine that caches the PDS encoding, the
// reachable-configuration automaton, and the HRB summary edges across
// requests, so repeated slicing of one graph pays the setup cost once. All
// slicing methods are safe for concurrent use.
type SDG struct {
	g   *sdg.Graph
	eng *engine.Engine
}

// Engine exposes the SDG's cached batch-slicing engine.
func (s *SDG) Engine() *Engine { return &Engine{s: s} }

// Engine builds the program's SDG and returns its slicing engine — the
// entry point for serving many slice requests against one program.
func (p *Program) Engine() (*Engine, error) {
	g, err := p.SDG()
	if err != nil {
		return nil, err
	}
	return g.Engine(), nil
}

// Stats summarizes the graph.
type Stats struct {
	Procs     int
	Vertices  int
	Edges     int
	CallSites int
}

// Stats returns summary counts.
func (s *SDG) Stats() Stats {
	st := s.g.Statistics()
	return Stats{Procs: st.Procs, Vertices: st.Vertices, Edges: st.Edges, CallSites: st.CallSites}
}

// Criterion selects the slice's target program elements.
type Criterion struct {
	vertices []sdg.VertexID
	err      error
}

// PrintfCriterion selects the arguments of every printf in the named
// procedure (or everywhere when proc is "") — the criterion shape used
// throughout the paper.
func (s *SDG) PrintfCriterion(proc string) Criterion {
	vs := core.PrintfCriterion(s.g, proc)
	if len(vs) == 0 {
		return Criterion{err: fmt.Errorf("specslice: no printf in %q", proc)}
	}
	return Criterion{vertices: vs}
}

// LineCriterion selects every statement on the given source line. A call
// statement stands for the variables it uses and defines, so its criterion
// vertices are the call's actual-in and actual-out vertices (a bare call
// vertex depends on nothing and would slice to almost nothing).
func (s *SDG) LineCriterion(line int) Criterion {
	var vs []sdg.VertexID
	for _, v := range s.g.Vertices {
		if v.Stmt == nil || v.Stmt.Base().Pos.Line != line {
			continue
		}
		switch v.Kind {
		case sdg.KindStmt, sdg.KindPredicate:
			vs = append(vs, v.ID)
		case sdg.KindCall:
			site := s.g.Sites[v.Site]
			vs = append(vs, site.ActualIns...)
			vs = append(vs, site.ActualOuts...)
			if len(site.ActualIns)+len(site.ActualOuts) == 0 {
				vs = append(vs, v.ID)
			}
		}
	}
	if len(vs) == 0 {
		return Criterion{err: fmt.Errorf("specslice: no statement on line %d", line)}
	}
	return Criterion{vertices: vs}
}

// StmtCriterion selects statements whose printed form matches label in the
// named procedure (e.g. "prod = 1").
func (s *SDG) StmtCriterion(proc, label string) Criterion {
	vs := feature.ForwardCriterion(s.g, proc, label)
	if len(vs) == 0 {
		return Criterion{err: fmt.Errorf("specslice: no statement %q in %s", label, proc)}
	}
	return Criterion{vertices: vs}
}

func (c Criterion) configs() core.Configs {
	var out core.Configs
	for _, v := range c.vertices {
		out = append(out, core.Config{Vertex: v})
	}
	return out
}

// Slice is a computed executable slice (polyvariant or monovariant).
type Slice struct {
	src      *sdg.Graph
	variants []core.ProcVariant
	counts   map[string]int
	res      *core.Result // nil for monovariant slices
	spec     core.CriterionSpec
}

// SpecializationSlice computes the paper's polyvariant executable slice
// (Alg. 1). Criterion vertices in procedures other than main are sliced in
// all of their reachable calling contexts.
func (s *SDG) SpecializationSlice(c Criterion) (*Slice, error) {
	if c.err != nil {
		return nil, c.err
	}
	spec := s.specFor(c)
	res, err := s.eng.Specialize(spec)
	if err != nil {
		return nil, err
	}
	return &Slice{src: s.g, variants: res.Variants(), counts: res.VariantCounts(), res: res, spec: spec}, nil
}

// specFor chooses the configuration language of a criterion: explicit
// empty-stack configurations when every vertex is in main, otherwise all
// reachable calling contexts.
func (s *SDG) specFor(c Criterion) core.CriterionSpec {
	if s.allInMain(c) {
		return c.configs()
	}
	return core.Vertices(c.vertices)
}

func (s *SDG) allInMain(c Criterion) bool {
	for _, v := range c.vertices {
		if s.g.Procs[s.g.Vertices[v].Proc].Name != "main" {
			return false
		}
	}
	return true
}

// MonovariantSlice computes Binkley's monovariant executable slice.
func (s *SDG) MonovariantSlice(c Criterion) (*Slice, error) {
	if c.err != nil {
		return nil, c.err
	}
	res := s.eng.Binkley(c.vertices)
	return &Slice{src: s.g, variants: res.Variants(), counts: singleCounts(res.Variants())}, nil
}

// WeiserSlice computes the Weiser-style executable slice baseline.
func (s *SDG) WeiserSlice(c Criterion) (*Slice, error) {
	if c.err != nil {
		return nil, c.err
	}
	res := s.eng.Weiser(c.vertices)
	return &Slice{src: s.g, variants: res.Variants(), counts: singleCounts(res.Variants())}, nil
}

// RemoveFeature computes the paper's §7 feature removal: the program minus
// the forward slice of the criterion, specialized to stay executable.
func (s *SDG) RemoveFeature(c Criterion) (*Slice, error) {
	if c.err != nil {
		return nil, c.err
	}
	res, err := s.eng.RemoveFeature(c.vertices)
	if err != nil {
		return nil, err
	}
	return &Slice{src: s.g, variants: res.Variants(), counts: res.VariantCounts(), res: res}, nil
}

// ClosureSliceSize returns the number of program elements in the HRB
// closure slice from the criterion (the paper's baseline size metric).
func (s *SDG) ClosureSliceSize(c Criterion) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	return len(s.eng.Backward(c.vertices)), nil
}

func singleCounts(vars []core.ProcVariant) map[string]int {
	out := map[string]int{}
	for _, v := range vars {
		out[v.Orig.Name]++
	}
	return out
}

// Program emits the slice as an executable MicroC program.
func (sl *Slice) Program() (*Program, error) {
	out, err := emit.Program(sl.src, sl.variants)
	if err != nil {
		return nil, err
	}
	return &Program{ast: out}, nil
}

// Source emits the slice directly as MicroC source text — the form the
// HTTP service returns to clients.
func (sl *Slice) Source() (string, error) {
	return emit.Source(sl.src, sl.variants)
}

// VariantCounts reports how many specialized versions each sliced
// procedure received (always 1 for monovariant slices).
func (sl *Slice) VariantCounts() map[string]int { return sl.counts }

// Vertices returns the total vertex count of the slice (counting
// replicated elements once per copy).
func (sl *Slice) Vertices() int {
	n := 0
	for _, v := range sl.variants {
		n += len(v.Vertices)
	}
	return n
}

// SelfCheck runs the paper's §8.3 reslicing validation (polyvariant slices
// only): the output, sliced again, must yield the same configuration
// language modulo renaming.
func (sl *Slice) SelfCheck() error {
	if sl.res == nil || sl.spec == nil {
		return errors.New("specslice: self-check applies to specialization slices")
	}
	return sl.res.ReslicingCheck(sl.spec)
}

// Release returns the slice's pooled analysis storage (the specialized
// SDG behind a polyvariant slice) for reuse. The variant view, counts,
// and any already-emitted source remain valid — they are materialized
// copies — but SelfCheck is no longer available. Monovariant slices hold
// no pooled storage; Release is a no-op for them. Long-running services
// release each slice once its response is rendered, which makes warm
// readouts run allocation-free; callers that keep the Slice may simply
// skip the call.
func (sl *Slice) Release() {
	if sl.res != nil {
		sl.res.Release()
		sl.res = nil
		sl.spec = nil
	}
}

// Engine is the reusable batch-slicing surface over one SDG: the expensive
// per-program analysis state (PDS encoding and Prestar rule indexes,
// reachable-configuration automaton, summary edges) is built once and
// shared by every request. All methods are safe for concurrent use, so one
// engine can serve many goroutines — the workload of interactive tooling
// that issues repeated queries against a single program.
type Engine struct {
	s *SDG
}

// SDG returns the graph the engine serves.
func (e *Engine) SDG() *SDG { return e.s }

// AdvanceStats reports how much analysis state Engine.Advance reused.
type AdvanceStats struct {
	// ProcsReused / ProcsRebuilt partition the new program's procedures:
	// reused ones had their dependence graphs copied from the previous
	// version instead of recomputed.
	ProcsReused  int `json:"procs_reused"`
	ProcsRebuilt int `json:"procs_rebuilt"`
	// SummaryEdgesReused counts inherited summary edges (call sites whose
	// callee subtree the edit did not touch).
	SummaryEdgesReused int `json:"summary_edges_reused"`
}

// Advance returns a new engine for p — typically the previous program
// after a small edit — reusing every untouched part of this engine's
// analysis state: unchanged procedures' dependence graphs are copied, not
// recomputed, and summary edges of call sites whose callee subtree is
// unchanged are inherited, so only the edit's dirty region is reanalyzed.
// The advanced engine is equivalent to p.Engine() built from scratch (the
// incremental oracle holds slices to byte-identical outputs); this engine
// is untouched and keeps serving its own version, so Advance is safe to
// call while other goroutines slice through it. Like Program.SDG, p must
// contain only direct calls (EliminateIndirectCalls first).
func (e *Engine) Advance(p *Program) (*Engine, AdvanceStats, error) {
	neng, delta, err := e.s.eng.Advance(p.ast)
	if err != nil {
		return nil, AdvanceStats{}, err
	}
	return &Engine{s: &SDG{g: neng.Graph(), eng: neng}}, AdvanceStats{
		ProcsReused:        delta.ProcsReused,
		ProcsRebuilt:       delta.ProcsRebuilt,
		SummaryEdgesReused: delta.SummaryEdgesSeeded,
	}, nil
}

// Warm eagerly builds every cache so subsequent requests pay only
// per-query costs. Calling it is optional; caches also fill lazily.
func (e *Engine) Warm() error { return e.s.eng.Warm() }

// BuildStats is the JSON-stable cold-build phase breakdown of an engine's
// graph: the interprocedural mod/ref analysis, the procedure-parallel PDG
// construction, and the interprocedural wiring, plus the worker-pool
// width the parallel phases ran at. Advanced engines (version chains)
// report zeros — their graphs were never built from scratch.
type BuildStats struct {
	Workers  int   `json:"workers"`
	ModRefNS int64 `json:"modref_ns"`
	// The mod/ref sub-phases of the dense bitset solver: variable
	// interning, per-procedure local effect extraction, and the
	// bottom-up fixpoint over the call-graph condensation. Their sum is
	// below ModRefNS, which also covers build-signature hashing.
	ModRefInternNS   int64 `json:"modref_intern_ns"`
	ModRefLocalNS    int64 `json:"modref_local_ns"`
	ModRefFixpointNS int64 `json:"modref_fixpoint_ns"`
	PDGNS            int64 `json:"pdg_ns"`
	ConnectNS        int64 `json:"connect_ns"`
	TotalNS          int64 `json:"total_ns"`
}

// Add accumulates o into s (aggregation across builds); the worker width
// is taken from the most recent build.
func (s *BuildStats) Add(o BuildStats) {
	if o.Workers != 0 {
		s.Workers = o.Workers
	}
	s.ModRefNS += o.ModRefNS
	s.ModRefInternNS += o.ModRefInternNS
	s.ModRefLocalNS += o.ModRefLocalNS
	s.ModRefFixpointNS += o.ModRefFixpointNS
	s.PDGNS += o.PDGNS
	s.ConnectNS += o.ConnectNS
	s.TotalNS += o.TotalNS
}

// BuildStats reports the cold-build phase timings of this engine's graph.
func (e *Engine) BuildStats() BuildStats {
	bs := e.s.eng.BuildStats()
	return BuildStats{
		Workers:          bs.Workers,
		ModRefNS:         int64(bs.ModRef),
		ModRefInternNS:   int64(bs.ModRefIntern),
		ModRefLocalNS:    int64(bs.ModRefLocal),
		ModRefFixpointNS: int64(bs.ModRefFixpoint),
		PDGNS:            int64(bs.PDG),
		ConnectNS:        int64(bs.Connect),
		TotalNS:          int64(bs.Total),
	}
}

// Footprint estimates the bytes retained by the engine's cached analysis
// state (graph, encoding, reachable-configuration automaton), warming the
// caches first. Long-running services use it to budget content-addressed
// engine caches by total bytes.
func (e *Engine) Footprint() int64 { return e.s.eng.Footprint() }

// Snapshot serializes the engine's analysis state — the SDG with its
// complete summary-edge set, as normalized source plus the graph structure
// — into the versioned binary format the persistent store writes to disk.
// LoadEngineSnapshot restores it; the restored engine serves slices
// byte-identical to a cold build of the same program.
func (e *Engine) Snapshot() ([]byte, error) { return e.s.eng.Snapshot() }

// LoadEngineSnapshot reconstructs an engine from Engine.Snapshot bytes.
// Corrupt or truncated input returns an error — the decoder validates
// every index and never panics, so snapshots read back from untrusted
// storage degrade to an error and a cold rebuild, not a crash.
func LoadEngineSnapshot(data []byte) (*Engine, error) {
	eng, err := engine.FromSnapshot(data)
	if err != nil {
		return nil, err
	}
	return &Engine{s: &SDG{g: eng.Graph(), eng: eng}}, nil
}

// SpecializationSlice computes the paper's polyvariant executable slice
// through the cached engine state.
func (e *Engine) SpecializationSlice(c Criterion) (*Slice, error) {
	return e.s.SpecializationSlice(c)
}

// MonovariantSlice computes Binkley's monovariant executable slice.
func (e *Engine) MonovariantSlice(c Criterion) (*Slice, error) { return e.s.MonovariantSlice(c) }

// WeiserSlice computes the Weiser-style executable slice baseline.
func (e *Engine) WeiserSlice(c Criterion) (*Slice, error) { return e.s.WeiserSlice(c) }

// RemoveFeature computes the paper's §7 feature removal.
func (e *Engine) RemoveFeature(c Criterion) (*Slice, error) { return e.s.RemoveFeature(c) }

// BatchMode selects the slicer a batch request runs.
type BatchMode int

const (
	// BatchPoly runs the specialization slicer (default).
	BatchPoly BatchMode = iota
	// BatchMono runs Binkley's monovariant slicer.
	BatchMono
	// BatchWeiser runs the Weiser-style baseline.
	BatchWeiser
	// BatchFeature runs §7 feature removal.
	BatchFeature
)

// BatchRequest is one criterion in a SliceAll batch.
type BatchRequest struct {
	Criterion Criterion
	Mode      BatchMode
	// Label identifies the request in results and defaults to its index.
	Label string
}

// BatchResult is the outcome of one batch request: exactly one of Slice or
// Err is set.
type BatchResult struct {
	Label    string
	Slice    *Slice
	Err      error
	Duration time.Duration
}

// BatchOptions configures SliceAll.
type BatchOptions struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
}

// BatchStats aggregates a SliceAll run.
type BatchStats struct {
	Requests int `json:"requests"`
	Failed   int `json:"failed"`
	Workers  int `json:"workers"`
	// Wall is the end-to-end batch time; Work is the sum of per-request
	// durations, so Work/Wall approximates the achieved parallelism.
	Wall time.Duration `json:"wall_ns"`
	Work time.Duration `json:"work_ns"`
	// Phases sums the polyvariant requests' per-phase timings across the
	// batch (the paper's Fig. 21 breakdown).
	Phases Timings `json:"phases"`
}

// Timings is the JSON-stable per-phase time breakdown of polyvariant slice
// requests (the paper's Fig. 21), in nanoseconds. It mirrors the internal
// core.Timings so services can report phase costs without reaching into
// internal packages.
type Timings struct {
	EncodeNS      int64 `json:"encode_ns"`
	PrestarNS     int64 `json:"prestar_ns"`
	AutomatonNS   int64 `json:"automaton_ns"`
	DeterminizeNS int64 `json:"determinize_ns"`
	MinimizeNS    int64 `json:"minimize_ns"`
	ReadoutNS     int64 `json:"readout_ns"`
	TotalNS       int64 `json:"total_ns"`
}

// Add accumulates o into t (aggregation across batches).
func (t *Timings) Add(o Timings) {
	t.EncodeNS += o.EncodeNS
	t.PrestarNS += o.PrestarNS
	t.AutomatonNS += o.AutomatonNS
	t.DeterminizeNS += o.DeterminizeNS
	t.MinimizeNS += o.MinimizeNS
	t.ReadoutNS += o.ReadoutNS
	t.TotalNS += o.TotalNS
}

func timingsFrom(t core.Timings) Timings {
	return Timings{
		EncodeNS:      int64(t.Encode),
		PrestarNS:     int64(t.Prestar),
		AutomatonNS:   int64(t.AutomatonOps),
		DeterminizeNS: int64(t.AutomatonDeterminize),
		MinimizeNS:    int64(t.AutomatonMinimize),
		ReadoutNS:     int64(t.Readout),
		TotalNS:       int64(t.Total),
	}
}

// SliceAll serves a batch of slice requests through a worker pool, sharing
// the engine's cached analysis state across all of them. Results come back
// in request order; a failing criterion fails only its own request.
func (e *Engine) SliceAll(reqs []BatchRequest, opts BatchOptions) ([]BatchResult, BatchStats) {
	s := e.s
	ereqs := make([]engine.Request, len(reqs))
	specs := make([]core.CriterionSpec, len(reqs))
	for i, r := range reqs {
		label := r.Label
		if label == "" {
			label = fmt.Sprintf("#%d", i)
		}
		ereqs[i] = engine.Request{Label: label, Err: r.Criterion.err}
		if r.Criterion.err != nil {
			continue
		}
		switch r.Mode {
		case BatchPoly:
			ereqs[i].Mode = engine.ModePoly
			specs[i] = s.specFor(r.Criterion)
			ereqs[i].Spec = specs[i]
		case BatchMono:
			ereqs[i].Mode = engine.ModeMono
			ereqs[i].Vertices = r.Criterion.vertices
		case BatchWeiser:
			ereqs[i].Mode = engine.ModeWeiser
			ereqs[i].Vertices = r.Criterion.vertices
		case BatchFeature:
			ereqs[i].Mode = engine.ModeFeature
			ereqs[i].Vertices = r.Criterion.vertices
		default:
			ereqs[i].Err = fmt.Errorf("specslice: unknown batch mode %d", r.Mode)
		}
	}

	resps, estats := s.eng.SliceAll(ereqs, engine.BatchOptions{Workers: opts.Workers})
	out := make([]BatchResult, len(resps))
	for i, resp := range resps {
		br := BatchResult{Label: resp.Label, Err: resp.Err, Duration: resp.Duration}
		if resp.Err == nil {
			switch {
			case resp.Poly != nil:
				br.Slice = &Slice{src: s.g, variants: resp.Poly.Variants(), counts: resp.Poly.VariantCounts(), res: resp.Poly, spec: specs[i]}
			case resp.Mono != nil:
				br.Slice = &Slice{src: s.g, variants: resp.Mono.Variants(), counts: singleCounts(resp.Mono.Variants())}
			}
		}
		out[i] = br
	}
	return out, BatchStats{
		Requests: estats.Requests,
		Failed:   estats.Failed,
		Workers:  estats.Workers,
		Wall:     estats.Wall,
		Work:     estats.Work,
		Phases:   timingsFrom(estats.Phases),
	}
}
