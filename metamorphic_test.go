package specslice_test

// Metamorphic properties of the slicer — relations that must hold between
// runs, with no reference output needed:
//
//   - Idempotence: re-slicing a specialized program w.r.t. the same
//     criterion is a fixed point, byte-identical at the source level. A
//     specialization slice is minimal (paper Thm. 4.9), so slicing it again
//     can neither drop nor replicate anything.
//   - Containment: the monovariant executable slice always contains the
//     polyvariant slice's elements (the paper's headline precision claim —
//     monovariant algorithms over-approximate to stay executable).
//
// Both run across the adversarial corpus (pipeline_test.go) and generated
// workload programs, reusing the oracle's deterministic criterion draws.

import (
	"math/rand"
	"strings"
	"testing"

	"specslice"
	"specslice/internal/emit"
	"specslice/internal/engine"
	"specslice/internal/lang"
	"specslice/internal/sdg"
	"specslice/internal/workload"
)

// metamorphicSources returns named program sources: the corpus plus
// generated suites.
func metamorphicSources() map[string]string {
	out := map[string]string{}
	for name, src := range corpus {
		out[name] = src
	}
	for i, cfg := range oracleConfigs(6) {
		cfg.Name = "gen"
		out[cfg.Name+string(rune('a'+i))] = workload.GenerateSource(cfg)
	}
	return out
}

func TestMetamorphicResliceIdempotent(t *testing.T) {
	for name, src := range metamorphicSources() {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			prog := specslice.MustParse(src)
			g, err := prog.SDG()
			if err != nil {
				t.Fatal(err)
			}
			sl, err := g.SpecializationSlice(g.PrintfCriterion(""))
			if err != nil {
				t.Fatal(err)
			}
			out1, err := sl.Program()
			if err != nil {
				t.Fatal(err)
			}
			src1 := out1.Source()

			prog2, err := specslice.Parse(src1)
			if err != nil {
				t.Fatalf("slice does not reparse: %v\n%s", err, src1)
			}
			g2, err := prog2.SDG()
			if err != nil {
				t.Fatal(err)
			}
			sl2, err := g2.SpecializationSlice(g2.PrintfCriterion(""))
			if err != nil {
				t.Fatalf("reslice: %v\n%s", err, src1)
			}
			out2, err := sl2.Program()
			if err != nil {
				t.Fatal(err)
			}
			if src2 := out2.Source(); src2 != src1 {
				t.Errorf("re-slicing is not idempotent:\n--- first slice ---\n%s\n--- second slice ---\n%s", src1, src2)
			}
		})
	}
}

func TestMetamorphicMonoContainsPoly(t *testing.T) {
	rng := rand.New(rand.NewSource(0x0CEA))
	pairs := 0
	for name, src := range metamorphicSources() {
		prog := lang.MustParse(src)
		g := sdg.MustBuild(prog)
		eng := engine.New(g)
		for _, c := range drawCriteria(g, rng, 8) {
			res, err := eng.Specialize(c.spec)
			if err != nil {
				continue // unreachable criterion etc.; the oracle counts these
			}
			poly := map[sdg.VertexID]bool{}
			for _, v := range res.Variants() {
				for id := range v.Vertices {
					poly[id] = true
				}
			}
			mono := map[sdg.VertexID]bool{}
			for _, v := range eng.Binkley(c.mono).Variants() {
				for id := range v.Vertices {
					mono[id] = true
				}
			}
			if len(mono) < len(poly) {
				t.Errorf("%s %s: mono slice has %d elements, poly %d", name, c.name, len(mono), len(poly))
			}
			for id := range poly {
				if !mono[id] {
					t.Errorf("%s %s: poly element %s missing from mono slice", name, c.name, g.VertexString(id))
				}
			}
			pairs++
			// Containment must survive emission too: the mono program's
			// procedures each exist, so emit cannot fail on a superset.
			if pairs%5 == 0 {
				if text, err := emit.Source(g, eng.Binkley(c.mono).Variants()); err != nil {
					t.Errorf("%s %s: mono emit: %v", name, c.name, err)
				} else if !strings.Contains(text, "main(") {
					t.Errorf("%s %s: mono emit lost main:\n%s", name, c.name, text)
				}
			}
		}
	}
	if pairs < 50 {
		t.Errorf("only %d containment pairs checked, want >= 50", pairs)
	}
	t.Logf("containment: %d pairs", pairs)
}
